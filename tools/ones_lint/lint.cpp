#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

namespace ones::lint {

namespace {

/// Decision-path modules for R2: hash order anywhere in these can reach a
/// scheduling / elastic / evolution decision.
const std::set<std::string>& decision_modules() {
  static const std::set<std::string> mods = {"sim", "sched", "core", "elastic",
                                             "predict"};
  return mods;
}

struct SplitSource {
  std::vector<std::string> raw;       ///< original lines (R4 reads include paths)
  std::vector<std::string> code;      ///< literals/comments blanked out
  std::vector<std::string> comments;  ///< only comment text, rest blanked
};

/// Blank comments and string/char literals out of `content` (preserving
/// line structure) so pattern matching cannot fire inside either; keep the
/// comment text separately for annotation lookup. Handles //, /**/, escape
/// sequences and R"delim(...)delim" raw strings.
SplitSource split_source(const std::string& content) {
  enum class State { Normal, LineComment, BlockComment, String, Char, RawString };
  State state = State::Normal;
  std::string raw_delim;  // the ")delim" that terminates the raw string
  std::string code_line, comment_line;
  SplitSource out;
  auto flush = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };
  {
    std::string line;
    for (char c : content) {
      if (c == '\n') {
        out.raw.push_back(line);
        line.clear();
      } else {
        line += c;
      }
    }
    out.raw.push_back(line);
  }
  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::LineComment) state = State::Normal;
      flush();
      continue;
    }
    switch (state) {
      case State::Normal:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          code_line += "  ";
          comment_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          code_line += "  ";
          comment_line += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // R"delim( — capture the delimiter up to the '('.
          std::size_t j = i + 2;
          std::string delim;
          while (j < n && content[j] != '(' && content[j] != '\n') delim += content[j++];
          if (j < n && content[j] == '(') {
            state = State::RawString;
            raw_delim = ")" + delim + "\"";
            for (std::size_t k = i; k <= j; ++k) {
              code_line += ' ';
              comment_line += ' ';
            }
            i = j;
          } else {
            code_line += c;
            comment_line += ' ';
          }
        } else if (c == '"') {
          state = State::String;
          code_line += ' ';
          comment_line += ' ';
        } else if (c == '\'') {
          state = State::Char;
          code_line += ' ';
          comment_line += ' ';
        } else {
          code_line += c;
          comment_line += ' ';
        }
        break;
      case State::LineComment:
        code_line += ' ';
        comment_line += c;
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          state = State::Normal;
          code_line += "  ";
          comment_line += "  ";
          ++i;
        } else {
          code_line += ' ';
          comment_line += c;
        }
        break;
      case State::String:
        code_line += ' ';
        comment_line += ' ';
        if (c == '\\') {
          if (next != '\0' && next != '\n') {
            code_line += ' ';
            comment_line += ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::Normal;
        }
        break;
      case State::Char:
        code_line += ' ';
        comment_line += ' ';
        if (c == '\\') {
          if (next != '\0' && next != '\n') {
            code_line += ' ';
            comment_line += ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::Normal;
        }
        break;
      case State::RawString:
        code_line += ' ';
        comment_line += ' ';
        if (c == raw_delim[0] && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k) {
            code_line += ' ';
            comment_line += ' ';
          }
          i += raw_delim.size() - 1;
          state = State::Normal;
        }
        break;
    }
  }
  flush();
  return out;
}

/// Path component immediately after the last "src" component, or "" when the
/// file is not under a src/ tree. Works for the real tree and for test
/// fixtures laid out as .../lint_fixtures/src/<module>/....
std::string module_of(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!part.empty()) parts.push_back(part);
      part.clear();
    } else {
      part += c;
    }
  }
  if (!part.empty()) parts.push_back(part);
  for (std::size_t i = parts.size(); i-- > 1;) {
    if (parts[i - 1] == "src") return parts[i];
  }
  return "";
}

bool in_src(const std::string& path) { return !module_of(path).empty(); }

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Per-line `// ones-lint: <tag>(<reason>)` map: tag -> has-nonempty-reason.
using Annotations = std::vector<std::map<std::string, bool>>;

const std::set<std::string>& known_tags() {
  static const std::set<std::string> tags = {
      "wall-clock-ok", "unordered-ok", "unordered-iteration-ok", "assert-ok",
      "include-ok"};
  return tags;
}

bool nonempty_reason(const std::string& reason) {
  return std::any_of(reason.begin(), reason.end(),
                     [](unsigned char c) { return !std::isspace(c); });
}

/// Parses both the single-line form (`ones-lint: <tag>(<reason>)`, effective
/// on its own line and the next) and the region form (`ones-lint-begin:
/// <tag>(<reason>)` ... `ones-lint-end: <tag>`). Unknown tags and regions left open
/// at end-of-file are findings themselves (rule "ANN") — a typo must not
/// silently disable a rule.
Annotations parse_annotations(const std::string& path,
                              const std::vector<std::string>& comments,
                              std::vector<Finding>& findings) {
  static const std::regex line_re(R"(ones-lint:\s*([a-z-]+)\s*\(([^)]*)\))");
  static const std::regex begin_re(R"(ones-lint-begin:\s*([a-z-]+)\s*\(([^)]*)\))");
  static const std::regex end_re(R"(ones-lint-end:\s*([a-z-]+))");
  Annotations out(comments.size());
  std::map<std::string, int> open_regions;  // tag -> begin line (1-based)
  for (std::size_t i = 0; i < comments.size(); ++i) {
    const std::string& text = comments[i];
    for (auto it = std::sregex_iterator(text.begin(), text.end(), line_re);
         it != std::sregex_iterator(); ++it) {
      const std::string tag = (*it)[1].str();
      if (!known_tags().count(tag)) {
        findings.push_back({path, static_cast<int>(i + 1), "ANN",
                            "unknown ones-lint tag '" + tag + "'"});
        continue;
      }
      out[i][tag] = out[i][tag] || nonempty_reason((*it)[2].str());
    }
    for (auto it = std::sregex_iterator(text.begin(), text.end(), begin_re);
         it != std::sregex_iterator(); ++it) {
      const std::string tag = (*it)[1].str();
      if (!known_tags().count(tag)) {
        findings.push_back({path, static_cast<int>(i + 1), "ANN",
                            "unknown ones-lint tag '" + tag + "'"});
      } else if (!nonempty_reason((*it)[2].str())) {
        findings.push_back({path, static_cast<int>(i + 1), "ANN",
                            "ones-lint-begin: " + tag + " needs a non-empty reason"});
      } else {
        open_regions[tag] = static_cast<int>(i + 1);
      }
    }
    for (const auto& [tag, from] : open_regions) out[i][tag] = true;
    for (auto it = std::sregex_iterator(text.begin(), text.end(), end_re);
         it != std::sregex_iterator(); ++it) {
      open_regions.erase((*it)[1].str());
    }
  }
  for (const auto& [tag, from] : open_regions) {
    findings.push_back({path, from, "ANN",
                        "ones-lint-begin: " + tag +
                            " never closed (missing `ones-lint-end: " + tag + "`)"});
  }
  return out;
}

/// True when line `i` (0-based) or the line above carries `tag` with a
/// non-empty reason.
bool annotated(const Annotations& ann, std::size_t i, const std::string& tag) {
  for (std::size_t j = i > 0 ? i - 1 : i; j <= i; ++j) {
    auto it = ann[j].find(tag);
    if (it != ann[j].end() && it->second) return true;
  }
  return false;
}

struct R1Pattern {
  std::regex re;
  std::string what;
};

const std::vector<R1Pattern>& r1_patterns() {
  static const std::vector<R1Pattern> pats = [] {
    std::vector<R1Pattern> v;
    v.push_back({std::regex(R"(std::chrono)"), "std::chrono (wall-clock)"});
    v.push_back({std::regex(R"(\b(?:steady_clock|system_clock|high_resolution_clock)\b)"),
                 "chrono clock"});
    v.push_back({std::regex(R"(\brandom_device\b)"), "std::random_device"});
    v.push_back({std::regex(R"(\bs?rand\s*\()"), "rand()/srand()"});
    v.push_back({std::regex(R"(\b(?:gettimeofday|clock_gettime|timespec_get)\s*\()"),
                 "OS clock call"});
    v.push_back({std::regex(R"(\b(?:time|clock)\s*\(\s*(?:nullptr|NULL|0)?\s*\))"),
                 "::time()/::clock()"});
    return v;
  }();
  return pats;
}

void check_r1(const std::string& path, const SplitSource& src, const Annotations& ann,
              const Options& options, std::vector<Finding>& out) {
  for (const auto& allow : options.wall_clock_allowlist) {
    if (has_suffix(path, allow)) return;
  }
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    for (const auto& pat : r1_patterns()) {
      if (!std::regex_search(src.code[i], pat.re)) continue;
      if (annotated(ann, i, "wall-clock-ok")) continue;
      out.push_back({path, static_cast<int>(i + 1), "R1",
                     pat.what +
                         ": wall-clock and ambient randomness are banned "
                         "(determinism contract); seed from ones::Rng / use sim "
                         "time, or annotate a cosmetic stderr-only site with "
                         "`// ones-lint: wall-clock-ok(<reason>)`"});
      break;  // one R1 finding per line is enough
    }
  }
}

/// Names of variables declared in this file with an unordered type (directly
/// or through a local `using X = std::unordered_...` alias). Textual and
/// file-local by design; cross-file aliases are covered by the declaration
/// rule at the alias definition site.
std::set<std::string> unordered_names(const SplitSource& src) {
  std::string flat;
  for (const auto& line : src.code) {
    flat += line;
    flat += ' ';
  }
  std::set<std::string> names;
  static const std::regex decl(
      R"(std::unordered_(?:map|set)\s*<[^;{}()]*>\s+([A-Za-z_]\w*)\s*[;({=])");
  for (auto it = std::sregex_iterator(flat.begin(), flat.end(), decl);
       it != std::sregex_iterator(); ++it) {
    names.insert((*it)[1].str());
  }
  static const std::regex alias(R"(using\s+([A-Za-z_]\w*)\s*=\s*std::unordered_)");
  std::set<std::string> aliases;
  for (auto it = std::sregex_iterator(flat.begin(), flat.end(), alias);
       it != std::sregex_iterator(); ++it) {
    aliases.insert((*it)[1].str());
  }
  for (const auto& a : aliases) {
    const std::regex alias_decl("\\b" + a + R"(\s*(?:<[^;{}()]*>)?\s+([A-Za-z_]\w*)\s*[;({=])");
    for (auto it = std::sregex_iterator(flat.begin(), flat.end(), alias_decl);
         it != std::sregex_iterator(); ++it) {
      names.insert((*it)[1].str());
    }
  }
  return names;
}

void check_r2(const std::string& path, const SplitSource& src, const Annotations& ann,
              std::vector<Finding>& out) {
  const std::string module = module_of(path);
  if (!decision_modules().count(module)) return;

  static const std::regex use(R"(std::unordered_(?:map|set)\b)");
  static const std::regex include_line(R"(^\s*#\s*include\b)");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    if (!std::regex_search(src.code[i], use)) continue;
    if (std::regex_search(src.code[i], include_line)) continue;
    if (annotated(ann, i, "unordered-ok") || annotated(ann, i, "unordered-iteration-ok")) {
      continue;
    }
    out.push_back({path, static_cast<int>(i + 1), "R2",
                   "std::unordered_map/set in decision-path module '" + module +
                       "': annotate with `// ones-lint: unordered-ok(<why hash "
                       "order cannot reach a decision>)` or use an ordered "
                       "container"});
  }

  const std::set<std::string> names = unordered_names(src);
  if (names.empty()) return;
  static const std::regex range_for(R"(for\s*\([^;)]*:\s*(?:\w+(?:\.|->))*([A-Za-z_]\w*)\s*\))");
  static const std::regex begin_call(R"(\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    std::string hit;
    std::smatch m;
    if (std::regex_search(line, m, range_for) && names.count(m[1].str())) {
      hit = m[1].str();
    } else if (line.find("for") != std::string::npos &&
               std::regex_search(line, m, begin_call) && names.count(m[1].str())) {
      hit = m[1].str();
    }
    if (hit.empty()) continue;
    if (annotated(ann, i, "unordered-iteration-ok")) continue;
    out.push_back({path, static_cast<int>(i + 1), "R2",
                   "iteration over unordered container '" + hit +
                       "' in decision-path module '" + module_of(path) +
                       "': hash order must not feed decisions — iterate a "
                       "sorted/insertion-ordered copy, or annotate with `// "
                       "ones-lint: unordered-iteration-ok(<reason>)`"});
  }
}

void check_r3(const std::string& path, const SplitSource& src, const Annotations& ann,
              std::vector<Finding>& out) {
  if (!in_src(path)) return;
  static const std::regex assert_call(R"(\bassert\s*\()");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    if (!std::regex_search(src.code[i], assert_call)) continue;
    if (annotated(ann, i, "assert-ok")) continue;
    out.push_back({path, static_cast<int>(i + 1), "R3",
                   "assert() in library code: use ONES_EXPECT(_MSG) "
                   "(common/expect.hpp) so tests can assert on the throw"});
  }
}

void check_r4(const std::string& path, const SplitSource& src, const Annotations& ann,
              std::vector<Finding>& out) {
  if (!in_src(path)) return;
  static const std::regex directive(R"(^\s*#\s*include\b)");
  static const std::regex quoted(R"re(^\s*#\s*include\s*"([^"]+)")re");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    // The path literal is blanked in the code view; gate on the directive
    // being real code, then read the path from the raw line.
    if (!std::regex_search(src.code[i], directive)) continue;
    std::smatch m;
    if (!std::regex_search(src.raw[i], m, quoted)) continue;
    if (annotated(ann, i, "include-ok")) continue;
    const std::string inc = m[1].str();
    if (inc.find("../") != std::string::npos) {
      out.push_back({path, static_cast<int>(i + 1), "R4",
                     "relative include \"" + inc +
                         "\": include as \"module/file.hpp\" from the src/ root"});
    } else if (inc.find('/') == std::string::npos) {
      out.push_back({path, static_cast<int>(i + 1), "R4",
                     "bare include \"" + inc +
                         "\": include as \"module/file.hpp\" from the src/ root"});
    }
  }
}

}  // namespace

Options default_options() {
  Options o;
  o.wall_clock_allowlist = {
      "src/exp/progress.cpp",  // progress/ETA reporter: cosmetic stderr only
      "src/exp/progress.hpp",
      "bench/harness.hpp",  // bench::ScopedTimer: cosmetic stderr only
  };
  return o;
}

std::vector<Finding> lint_file(const std::string& path, const std::string& content,
                               const Options& options) {
  const SplitSource src = split_source(content);
  std::vector<Finding> out;
  const Annotations ann = parse_annotations(path, src.comments, out);
  if (options.r1) check_r1(path, src, ann, options, out);
  if (options.r2) check_r2(path, src, ann, out);
  if (options.r3) check_r3(path, src, ann, out);
  if (options.r4) check_r4(path, src, ann, out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Finding> lint_tree(const std::vector<std::string>& roots,
                               const Options& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
  };
  for (const auto& root : roots) {
    fs::path rp(root);
    if (fs::is_regular_file(rp)) {
      files.push_back(rp.generic_string());
    } else if (fs::is_directory(rp)) {
      for (const auto& entry : fs::recursive_directory_iterator(rp)) {
        if (entry.is_regular_file() && is_source(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else {
      throw std::runtime_error("ones_lint: no such file or directory: " + root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> out;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) throw std::runtime_error("ones_lint: cannot read " + file);
    std::ostringstream ss;
    ss << in.rdbuf();
    auto findings = lint_file(file, ss.str(), options);
    out.insert(out.end(), findings.begin(), findings.end());
  }
  return out;
}

std::string format(const Finding& f) {
  std::ostringstream os;
  os << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

}  // namespace ones::lint
