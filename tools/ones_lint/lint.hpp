// ones_lint — repo-specific determinism linter (DESIGN.md §11).
//
// Statically enforces the determinism contract that CLAUDE.md states in
// prose and the orchestrator/trace/metrics layers assert at runtime:
//
//   R1  no wall-clock or ambient randomness (std::chrono clocks, ::time,
//       rand/srand, std::random_device, clock_gettime, ...) outside the
//       progress/ETA allowlist or a `wall-clock-ok` annotation;
//   R2  unordered-container discipline in decision-path modules
//       (sim, sched, core, elastic, predict): every textual use of
//       std::unordered_map/std::unordered_set needs an `unordered-ok`
//       annotation stating why hash order cannot leak into decisions, and
//       iterating one is banned outright unless the site carries
//       `unordered-iteration-ok`;
//   R3  library code under src/ uses ONES_EXPECT(_MSG), never assert();
//   R4  include hygiene under src/: quoted includes are "module/file.hpp"
//       relative to the src/ include root — no "../", no bare file names.
//
// Annotation grammar (in a comment):
//
//   // ones-lint: <tag>(<non-empty reason>)        — this line and the next
//   // ones-lint-begin: <tag>(<non-empty reason>)  — until the matching
//   // ones-lint-end: <tag>                        —   end marker
//
// with <tag> one of wall-clock-ok, unordered-ok, unordered-iteration-ok,
// assert-ok, include-ok. An empty reason does not suppress the finding;
// unknown tags and regions left open at end-of-file are findings themselves
// (rule "ANN") so a typo cannot silently disable a rule.
//
// The analysis is line-oriented and textual (comments and string literals
// are stripped first); it is deliberately conservative and layered — the
// golden quickstart trace digest and the replay invariant checker catch
// what a text-level lint cannot (e.g. hash order reaching a decision
// through a type alias declared in another file).
#pragma once

#include <string>
#include <vector>

namespace ones::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  // "R1".."R4"
  std::string message;

  bool operator==(const Finding&) const = default;
};

struct Options {
  /// Files exempt from R1, matched as a path suffix (e.g.
  /// "src/exp/progress.cpp"). The default set covers the cosmetic
  /// wall-clock users sanctioned by CLAUDE.md: the progress/ETA reporter
  /// and bench::ScopedTimer.
  std::vector<std::string> wall_clock_allowlist;
  bool r1 = true;
  bool r2 = true;
  bool r3 = true;
  bool r4 = true;
};

/// Options with the repo's baked-in R1 allowlist.
Options default_options();

/// Lint one file given its contents. `path` drives rule scoping (decision-path
/// module detection, src/ membership) and appears in findings verbatim.
std::vector<Finding> lint_file(const std::string& path, const std::string& content,
                               const Options& options);

/// Recursively lint every .hpp/.cpp under each root (a root may also be a
/// single file). Findings are sorted by (file, line, rule) and the scan order
/// is deterministic. Throws std::runtime_error on an unreadable root.
std::vector<Finding> lint_tree(const std::vector<std::string>& roots,
                               const Options& options);

/// "file:line: [rule] message" — one line, matches common compiler output so
/// editors and CI annotate it.
std::string format(const Finding& finding);

}  // namespace ones::lint
