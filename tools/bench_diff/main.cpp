// bench_diff — compare BENCH_*.json bench reports across runs.
//
//   bench_diff [options] OLD NEW
//
// OLD and NEW are either two report files or two directories; in directory
// mode every BENCH_*.json present in BOTH sides is compared (files present
// on only one side warn). Deterministic metric drift is a regression (exit
// 1); host-time / profile growth warns unless --fail-on-host. Exit 2 on
// usage or I/O errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "diff.hpp"

namespace {

namespace fs = std::filesystem;
using ones::bench_diff::ReportDiff;
using ones::bench_diff::Thresholds;

void print_usage(std::FILE* out, const char* prog) {
  std::fprintf(out,
               "usage: %s [options] OLD NEW\n"
               "Compare two BENCH_*.json bench reports (or two directories of them).\n"
               "  --metric-tol=X  relative tolerance for deterministic metrics\n"
               "                  (default 1e-9; anything beyond is a regression)\n"
               "  --host-tol=X    relative increase tolerated for host time / RSS /\n"
               "                  profile spans before warning (default 0.25)\n"
               "  --fail-on-host  treat host/profile growth as a regression too\n"
               "exit status: 0 clean (warnings allowed), 1 regression, 2 error\n",
               prog);
}

double parse_double_value(const char* arg, const char* value, const char* prog) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (*value == '\0' || *end != '\0' || !(v >= 0.0)) {
    std::fprintf(stderr, "%s: bad value in '%s' (need a number >= 0)\n", prog, arg);
    std::exit(2);
  }
  return v;
}

/// BENCH_*.json basenames in `dir`, name -> full path.
std::map<std::string, fs::path> report_files(const fs::path& dir) {
  std::map<std::string, fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      files[name] = entry.path();
    }
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  const char* prog = argc > 0 ? argv[0] : "bench_diff";
  Thresholds thresholds;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage(stdout, prog);
      return 0;
    } else if (std::strncmp(arg, "--metric-tol=", 13) == 0) {
      thresholds.metric_rel_tol = parse_double_value(arg, arg + 13, prog);
    } else if (std::strncmp(arg, "--host-tol=", 11) == 0) {
      thresholds.host_rel_tol = parse_double_value(arg, arg + 11, prog);
    } else if (std::strcmp(arg, "--fail-on-host") == 0) {
      thresholds.fail_on_host = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", prog, arg);
      print_usage(stderr, prog);
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() != 2) {
    print_usage(stderr, prog);
    return 2;
  }

  int regressions = 0;
  int warnings = 0;
  try {
    std::vector<std::pair<std::string, std::string>> pairs;
    if (fs::is_directory(paths[0]) && fs::is_directory(paths[1])) {
      const auto old_files = report_files(paths[0]);
      const auto new_files = report_files(paths[1]);
      for (const auto& [name, old_path] : old_files) {
        const auto it = new_files.find(name);
        if (it == new_files.end()) {
          std::printf("WARN %s: only in %s\n", name.c_str(), paths[0].c_str());
          ++warnings;
        } else {
          pairs.emplace_back(old_path.string(), it->second.string());
        }
      }
      for (const auto& [name, new_path] : new_files) {
        if (old_files.find(name) == old_files.end()) {
          std::printf("WARN %s: only in %s\n", name.c_str(), paths[1].c_str());
          ++warnings;
        }
      }
      if (pairs.empty() && old_files.empty() && new_files.empty()) {
        std::fprintf(stderr, "%s: no BENCH_*.json files in either directory\n", prog);
        return 2;
      }
    } else {
      pairs.emplace_back(paths[0], paths[1]);
    }
    for (const auto& [old_path, new_path] : pairs) {
      const ReportDiff diff =
          ones::bench_diff::diff_files(old_path, new_path, thresholds);
      std::fputs(ones::bench_diff::format_diff(diff).c_str(), stdout);
      regressions += diff.regressions;
      warnings += diff.warnings;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", prog, e.what());
    return 2;
  }
  std::printf("total: %d regression(s), %d warning(s)\n", regressions, warnings);
  return regressions > 0 ? 1 : 0;
}
