#include "diff.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ones::bench_diff {

namespace {

/// Relative difference against the larger magnitude (symmetric, finite for
/// old == 0). Both exactly zero compares equal.
double rel_diff(double a, double b) {
  const double denom = std::max(std::abs(a), std::abs(b));
  if (denom == 0.0) return 0.0;
  return std::abs(b - a) / denom;
}

const JsonValue& require(const JsonValue& doc, const std::string& key) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr) {
    throw std::runtime_error("not a bench report: missing \"" + key + "\"");
  }
  return *v;
}

/// Flatten an object-of-numbers into `out` under `prefix/`.
void collect_numbers(const JsonValue* obj, const std::string& prefix,
                     std::map<std::string, double>& out) {
  if (obj == nullptr || obj->kind != JsonValue::Kind::Object) return;
  for (const auto& [key, value] : obj->object) {
    if (value.kind == JsonValue::Kind::Number) out[prefix + key] = value.number;
  }
}

std::map<std::string, double> metric_map(const JsonValue& report) {
  std::map<std::string, double> m;
  collect_numbers(report.find("metrics"), "metrics/", m);
  return m;
}

std::map<std::string, double> host_map(const JsonValue& report) {
  std::map<std::string, double> m;
  const JsonValue* host = report.find("host");
  if (host != nullptr && host->kind == JsonValue::Kind::Object) {
    if (const JsonValue* w = host->find("wall_seconds");
        w != nullptr && w->kind == JsonValue::Kind::Number) {
      m["host/wall_seconds"] = w->number;
    }
    if (const JsonValue* r = host->find("peak_rss_mib");
        r != nullptr && r->kind == JsonValue::Kind::Number) {
      m["host/peak_rss_mib"] = r->number;
    }
    collect_numbers(host->find("metrics"), "host/", m);
  }
  return m;
}

/// total_ns by span path out of the "profile" array.
std::map<std::string, double> profile_map(const JsonValue& report) {
  std::map<std::string, double> m;
  const JsonValue* profile = report.find("profile");
  if (profile == nullptr || profile->kind != JsonValue::Kind::Array) return m;
  for (const JsonValue& span : profile->array) {
    const JsonValue* path = span.find("path");
    const JsonValue* total = span.find("total_ns");
    if (path != nullptr && path->kind == JsonValue::Kind::String && total != nullptr &&
        total->kind == JsonValue::Kind::Number) {
      m["profile/" + path->string] = total->number;
    }
  }
  return m;
}

void record(ReportDiff& diff, Delta delta) {
  if (delta.severity == Severity::Regression) ++diff.regressions;
  if (delta.severity == Severity::Warning) ++diff.warnings;
  diff.deltas.push_back(std::move(delta));
}

/// Deterministic metrics: symmetric hard comparison.
void diff_metrics(const std::map<std::string, double>& old_m,
                  const std::map<std::string, double>& new_m, const Thresholds& t,
                  ReportDiff& diff) {
  for (const auto& [key, old_v] : old_m) {
    const auto it = new_m.find(key);
    if (it == new_m.end()) {
      record(diff, {key, old_v, 0.0, Severity::Regression, "only in old"});
    } else if (rel_diff(old_v, it->second) > t.metric_rel_tol) {
      record(diff, {key, old_v, it->second, Severity::Regression, ""});
    }
  }
  for (const auto& [key, new_v] : new_m) {
    if (old_m.find(key) == old_m.end()) {
      record(diff, {key, 0.0, new_v, Severity::Info, "only in new"});
    }
  }
}

/// Host / profile values: one-sided (increase-only), warn by default.
void diff_host(const std::map<std::string, double>& old_m,
               const std::map<std::string, double>& new_m, const Thresholds& t,
               ReportDiff& diff) {
  const Severity flagged = t.fail_on_host ? Severity::Regression : Severity::Warning;
  for (const auto& [key, old_v] : old_m) {
    const auto it = new_m.find(key);
    if (it == new_m.end()) continue;  // span/metric vanished: not a slowdown
    const double new_v = it->second;
    if (new_v > old_v && rel_diff(old_v, new_v) > t.host_rel_tol) {
      record(diff, {key, old_v, new_v, flagged, ""});
    }
  }
}

}  // namespace

ReportDiff diff_reports(const JsonValue& old_report, const JsonValue& new_report,
                        const Thresholds& t) {
  for (const JsonValue* report : {&old_report, &new_report}) {
    const JsonValue& schema = require(*report, "schema");
    if (schema.kind != JsonValue::Kind::Number || schema.number != 1.0) {
      throw std::runtime_error("not a bench report: unsupported \"schema\"");
    }
    require(*report, "bench");
    require(*report, "metrics");
  }
  ReportDiff diff;
  diff.bench = require(new_report, "bench").string;
  const std::string old_bench = require(old_report, "bench").string;
  if (old_bench != diff.bench) {
    throw std::runtime_error("bench name mismatch: \"" + old_bench + "\" vs \"" +
                             diff.bench + "\"");
  }
  diff_metrics(metric_map(old_report), metric_map(new_report), t, diff);
  diff_host(host_map(old_report), host_map(new_report), t, diff);
  diff_host(profile_map(old_report), profile_map(new_report), t, diff);
  return diff;
}

ReportDiff diff_files(const std::string& old_path, const std::string& new_path,
                      const Thresholds& t) {
  auto load = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
      return parse_json(text.str());
    } catch (const std::exception& e) {
      throw std::runtime_error("'" + path + "': " + e.what());
    }
  };
  const JsonValue old_report = load(old_path);
  const JsonValue new_report = load(new_path);
  return diff_reports(old_report, new_report, t);
}

std::string format_diff(const ReportDiff& d) {
  std::ostringstream out;
  out << "[" << d.bench << "] ";
  if (d.deltas.empty()) {
    out << "no changes\n";
    return out.str();
  }
  out << d.regressions << " regression(s), " << d.warnings << " warning(s)\n";
  for (const Delta& delta : d.deltas) {
    const char* tag = delta.severity == Severity::Regression ? "REGRESSION"
                      : delta.severity == Severity::Warning  ? "WARN"
                                                             : "info";
    out << "  " << tag << ' ' << delta.key << ": ";
    if (!delta.note.empty()) {
      out << delta.note << " (" << json_double(delta.note == "only in old"
                                                   ? delta.old_value
                                                   : delta.new_value)
          << ")";
    } else {
      out << json_double(delta.old_value) << " -> " << json_double(delta.new_value);
      const double denom = std::max(std::abs(delta.old_value), 1e-300);
      char pct[32];
      std::snprintf(pct, sizeof pct, "%+.2f%%",
                    100.0 * (delta.new_value - delta.old_value) / denom);
      out << " (" << pct << ")";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace ones::bench_diff
