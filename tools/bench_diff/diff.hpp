// Cross-run regression diffing for the canonical BENCH_<name>.json files the
// bench harness emits (bench/harness.hpp BenchReport, DESIGN.md §14).
//
// The comparison mirrors the schema's determinism split:
//   * "metrics"  — deterministic headline results. Any relative drift beyond
//     a tiny tolerance is a REGRESSION (the simulator is bit-deterministic;
//     a moved metric means a changed decision path, not noise). A metric
//     missing from the new file is also a regression; a brand-new metric is
//     informational.
//   * "host"     — wall-clock / RSS / throughput measurements. Machine
//     noise: increases beyond the (much looser) host tolerance WARN by
//     default, and fail only under Thresholds::fail_on_host.
//   * "profile"  — host-span rollup nanoseconds, warn-only like host. Span
//     counts are not compared: a warm cache legitimately changes how many
//     spans execute.
//   * "cache"    — informational; never compared (hit/miss depends on the
//     local cache directory, not the code under test).
//
// Library + thin CLI (main.cpp) so tests/bench_diff_test.cpp can assert the
// classification in-process on synthetic reports.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"

namespace ones::bench_diff {

struct Thresholds {
  /// Deterministic metrics: relative drift above this is a regression.
  /// Effectively "exact" by default — doubles survive the %.17g round-trip.
  double metric_rel_tol = 1e-9;
  /// Host-side measurements: relative INCREASE above this warns (or fails
  /// under fail_on_host). Decreases are improvements and never flagged.
  double host_rel_tol = 0.25;
  /// Escalate host/profile warnings to regressions (nonzero exit).
  bool fail_on_host = false;
};

enum class Severity { Info, Warning, Regression };

/// One compared value (or a presence mismatch, where `note` explains).
struct Delta {
  std::string key;  ///< e.g. "metrics/avg_jct.ONES", "host/wall_seconds"
  double old_value = 0.0;
  double new_value = 0.0;
  Severity severity = Severity::Info;
  std::string note;  ///< empty, "only in old", or "only in new"
};

struct ReportDiff {
  std::string bench;  ///< "bench" field of the new report (or the old one)
  std::vector<Delta> deltas;  ///< flagged values only (unchanged ones are omitted)
  int regressions = 0;
  int warnings = 0;
};

/// Compare two parsed BENCH_*.json documents. Throws std::runtime_error if
/// either is not a schema-1 bench report.
ReportDiff diff_reports(const JsonValue& old_report, const JsonValue& new_report,
                        const Thresholds& t);

/// Load + compare two BENCH_*.json files. Throws std::runtime_error on
/// missing/unreadable/malformed input.
ReportDiff diff_files(const std::string& old_path, const std::string& new_path,
                      const Thresholds& t);

/// Human-readable rendering, one block per report; empty diff renders a
/// single "no changes" line.
std::string format_diff(const ReportDiff& d);

}  // namespace ones::bench_diff
